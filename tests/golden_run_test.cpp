// Golden-seed regression suite: every engine refactor must reproduce these
// runs bit-for-bit.
//
// The pinned values in golden_values.inc were captured from the engine as of
// the pre-delivery-fabric implementation (the straightforward per-recipient
// full-scan deliver_round) and locked in before the round-batched delivery
// fabric landed — so a pass here proves the fabric is behavior-preserving:
// identical rounds, identical decided names (hashed), identical traffic
// counters, for every algorithm × adversary × n × seed cell in
// harness::golden_grid().
//
// To re-capture after an intentional semantic change:
//   $ cmake --build build --target golden_gen
//   $ build/golden_gen > tests/golden_values.inc
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/two_choice.h"
#include "harness/golden.h"
#include "util/thread_pool.h"

namespace bil::harness {
namespace {

constexpr GoldenObservation kGolden[] = {
#include "golden_values.inc"
};

TEST(GoldenRuns, GridMatchesTableSize) {
  EXPECT_EQ(golden_grid().size(), std::size(kGolden));
}

void expect_grid_matches(std::uint32_t engine_threads) {
  const std::vector<GoldenCell> grid = golden_grid();
  ASSERT_EQ(grid.size(), std::size(kGolden));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const GoldenObservation observed =
        run_golden_cell(grid[i], engine_threads);
    const GoldenObservation& expected = kGolden[i];
    EXPECT_EQ(observed.rounds, expected.rounds) << describe(grid[i]);
    EXPECT_EQ(observed.total_rounds, expected.total_rounds)
        << describe(grid[i]);
    EXPECT_EQ(observed.crashes, expected.crashes) << describe(grid[i]);
    EXPECT_EQ(observed.messages_delivered, expected.messages_delivered)
        << describe(grid[i]);
    EXPECT_EQ(observed.bytes_delivered, expected.bytes_delivered)
        << describe(grid[i]);
    EXPECT_EQ(observed.max_payload_bytes, expected.max_payload_bytes)
        << describe(grid[i]);
    EXPECT_EQ(observed.names_hash, expected.names_hash)
        << describe(grid[i]) << " — decided names diverged (engine_threads="
        << engine_threads << ")";
  }
}

TEST(GoldenRuns, EveryCellIsBitIdentical) { expect_grid_matches(1); }

// The intra-round parallel executor must reproduce the same pinned table:
// the fan-out across worker threads may not change a single observable. At
// least 4 workers even on small machines, so the pool dispatch path (not
// the serial fallback) is what runs.
TEST(GoldenRuns, EveryCellIsBitIdenticalWithMaxEngineThreads) {
  expect_grid_matches(
      std::max(4u, bil::util::ThreadPool::hardware_threads()));
}

// ---- Two-choice allocator golden cells --------------------------------------
//
// baselines::run_two_choice is not an engine run (no wire, no adversary),
// so it sits outside golden_grid() — but the load-balancing-gap preset's
// claims are built on its outputs, so its (seed → allocation) mapping is
// pinned here the same way: max load, bins used, colliding-ball count and
// an FNV-1a hash of the full bin_of vector, captured from the
// pre-refactor implementation (PR 5's buffer-reuse change had to be
// bit-preserving).

struct TwoChoiceGolden {
  std::uint32_t n = 0;
  std::uint64_t seed = 0;
  std::uint32_t max_load = 0;
  std::uint32_t bins_used = 0;
  std::uint32_t colliding_balls = 0;
  std::uint64_t bins_hash = 0;
};

constexpr TwoChoiceGolden kTwoChoiceGolden[] = {
    {64, 24301ull, 4, 41, 40, 0x5bc0969818abf38ull},
    {64, 9001ull, 4, 40, 39, 0x54847af4843a506aull},
    {256, 24301ull, 6, 162, 153, 0x4702075045176847ull},
    {256, 9001ull, 5, 171, 149, 0x9dba5a4759fa9c01ull},
    {1024, 24301ull, 5, 654, 641, 0xd86c2cd10dade1cdull},
    {1024, 9001ull, 5, 643, 659, 0x232e723eb7ee3db8ull},
};

TEST(GoldenRuns, TwoChoiceAllocatorIsBitIdentical) {
  for (const TwoChoiceGolden& expected : kTwoChoiceGolden) {
    baselines::TwoChoiceOptions options;
    options.balls = expected.n;
    options.bins = expected.n;
    options.choices = 2;
    options.rounds = 3;
    options.seed = expected.seed;
    const baselines::TwoChoiceResult result =
        baselines::run_two_choice(options);
    EXPECT_EQ(result.max_load, expected.max_load)
        << "n=" << expected.n << " seed=" << expected.seed;
    EXPECT_EQ(result.bins_used, expected.bins_used)
        << "n=" << expected.n << " seed=" << expected.seed;
    EXPECT_EQ(result.colliding_balls, expected.colliding_balls)
        << "n=" << expected.n << " seed=" << expected.seed;
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const std::uint32_t bin : result.bin_of) {
      for (int shift = 0; shift < 32; shift += 8) {
        hash ^= (bin >> shift) & 0xffu;
        hash *= 0x100000001b3ull;
      }
    }
    EXPECT_EQ(hash, expected.bins_hash)
        << "n=" << expected.n << " seed=" << expected.seed
        << " — the allocation itself diverged";
  }
}

// ---- Splitter-network golden cells ------------------------------------------
//
// The splitter baseline joined after the kGolden table was pinned;
// golden_grid() hardcodes its algorithm list, so these cells live in their
// own table rather than perturbing the 148-cell fingerprint. Same contract:
// rounds, crash count, and an FNV-1a hash of the full name vector, captured
// at introduction.

struct SplitterGolden {
  std::uint32_t n = 0;
  std::uint64_t seed = 0;
  std::uint32_t crash_budget = 0;
  std::uint32_t rounds = 0;
  std::uint32_t crashes = 0;
  std::uint64_t names_hash = 0;
};

constexpr SplitterGolden kSplitterGolden[] = {
    {32, 3ull, 0, 32, 0, 0x568352fe14d66ddaull},
    {48, 5ull, 6, 48, 6, 0xc4fbc876f3b46297ull},
};

TEST(GoldenRuns, SplitterNetworkIsBitIdentical) {
  for (const SplitterGolden& expected : kSplitterGolden) {
    RunConfig config;
    config.algorithm = Algorithm::kSplitterNet;
    config.n = expected.n;
    config.seed = expected.seed;
    if (expected.crash_budget > 0) {
      config.adversary = {.kind = AdversaryKind::kEager,
                          .crashes = expected.crash_budget,
                          .when = 1,
                          .per_round = 1,
                          .subset = sim::SubsetPolicy::kRandomHalf};
    }
    const RunSummary summary = run_renaming(config);
    EXPECT_EQ(summary.rounds, expected.rounds)
        << "n=" << expected.n << " seed=" << expected.seed;
    EXPECT_EQ(summary.crashes, expected.crashes)
        << "n=" << expected.n << " seed=" << expected.seed;
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const sim::ProcessOutcome& outcome : summary.raw.outcomes) {
      const std::uint64_t name = outcome.crashed ? 0 : outcome.name;
      for (int shift = 0; shift < 64; shift += 8) {
        hash ^= (name >> shift) & 0xffu;
        hash *= 0x100000001b3ull;
      }
    }
    EXPECT_EQ(hash, expected.names_hash)
        << "n=" << expected.n << " seed=" << expected.seed
        << " — the renaming itself diverged (actual hash 0x" << std::hex
        << hash << ")";
  }
}

}  // namespace
}  // namespace bil::harness
