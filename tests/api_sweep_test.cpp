// SweepRunner tests: grid expansion, thread-count-independent determinism,
// engine/fast-sim backend agreement through the API (extending the
// fast_sim equivalence tests), and the ISSUE 1 acceptance sweep — a
// multi-threaded n=4096 sweep over 20+ seeds with backend-validated,
// deterministic results.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "api/sweep.h"
#include "util/contract.h"

namespace bil {
namespace {

using harness::Algorithm;
using harness::AdversaryKind;

std::string json_of(const api::SweepResult& result) {
  std::ostringstream out;
  result.write_json(out);
  return out.str();
}

api::ExperimentSpec mixed_grid_spec() {
  api::ExperimentSpec spec;
  spec.algorithms = {Algorithm::kBallsIntoLeaves, Algorithm::kHalving};
  spec.n_values = {16, 64};
  spec.adversaries = {
      harness::AdversarySpec{.kind = AdversaryKind::kNone},
      harness::AdversarySpec{.kind = AdversaryKind::kBurst, .crashes = 4,
                             .when = 1}};
  spec.seeds = 5;
  spec.keep_runs = true;
  return spec;
}

TEST(Sweep, ExpandsTheFullGridInOrder) {
  const api::ExperimentSpec spec = mixed_grid_spec();
  const auto cells = api::SweepRunner::expand(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u);
  // Algorithms-major, then n, then adversary.
  EXPECT_EQ(cells[0].algorithm, Algorithm::kBallsIntoLeaves);
  EXPECT_EQ(cells[0].n, 16u);
  EXPECT_EQ(cells[0].adversary.kind, AdversaryKind::kNone);
  EXPECT_EQ(cells[1].adversary.kind, AdversaryKind::kBurst);
  EXPECT_EQ(cells[2].n, 64u);
  EXPECT_EQ(cells[4].algorithm, Algorithm::kHalving);
}

TEST(Sweep, RejectsEmptyAxes) {
  api::ExperimentSpec spec;
  spec.algorithms.clear();
  EXPECT_THROW((void)api::SweepRunner(spec), ContractViolation);
  spec = api::ExperimentSpec{};
  spec.seeds = 0;
  EXPECT_THROW((void)api::SweepRunner(spec), ContractViolation);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  // The determinism contract: 1 worker and 8 workers produce bit-identical
  // SweepResults (slot-indexed writes, slot-ordered aggregation).
  api::ExperimentSpec spec = mixed_grid_spec();
  spec.threads = 1;
  const api::SweepResult serial = api::SweepRunner(spec).run();
  spec.threads = 8;
  const api::SweepResult parallel = api::SweepRunner(spec).run();

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    ASSERT_EQ(serial.cells[c].runs.size(), parallel.cells[c].runs.size());
    for (std::size_t r = 0; r < serial.cells[c].runs.size(); ++r) {
      const api::RunRecord& a = serial.cells[c].runs[r];
      const api::RunRecord& b = parallel.cells[c].runs[r];
      EXPECT_EQ(a.seed, b.seed);
      EXPECT_EQ(a.rounds, b.rounds);
      EXPECT_EQ(a.names, b.names);
    }
  }
  EXPECT_EQ(json_of(serial), json_of(parallel));
}

TEST(Sweep, BackendsAgreeRoundForRoundOnCrashFreeConfigs) {
  // Extends the fast_sim equivalence tests through the new API: explicit
  // EngineBackend and FastSimBackend sweeps of the same crash-free spec
  // agree on rounds and decided names for every run of every cell.
  api::ExperimentSpec spec;
  spec.algorithms = {Algorithm::kBallsIntoLeaves, Algorithm::kEarlyTerminating,
                     Algorithm::kRankDescent, Algorithm::kHalving};
  spec.n_values = {16, 37, 64};
  spec.seeds = 3;
  spec.keep_runs = true;

  spec.backend = api::BackendKind::kEngine;
  const api::SweepResult engine = api::SweepRunner(spec).run();
  spec.backend = api::BackendKind::kFastSim;
  const api::SweepResult fast = api::SweepRunner(spec).run();

  ASSERT_EQ(engine.cells.size(), fast.cells.size());
  for (std::size_t c = 0; c < engine.cells.size(); ++c) {
    EXPECT_EQ(engine.cells[c].backend_used, api::BackendKind::kEngine);
    EXPECT_EQ(fast.cells[c].backend_used, api::BackendKind::kFastSim);
    ASSERT_EQ(engine.cells[c].runs.size(), fast.cells[c].runs.size());
    for (std::size_t r = 0; r < engine.cells[c].runs.size(); ++r) {
      const api::RunRecord& e = engine.cells[c].runs[r];
      const api::RunRecord& f = fast.cells[c].runs[r];
      EXPECT_EQ(e.rounds, f.rounds)
          << "cell " << c << " seed " << e.seed;
      EXPECT_EQ(e.names, f.names) << "cell " << c << " seed " << e.seed;
      // The fast sim's analytic delivery count must equal the engine's
      // measured one — mixed-backend sweep tables report real traffic.
      EXPECT_EQ(e.messages_delivered, f.messages_delivered)
          << "cell " << c << " seed " << e.seed;
      EXPECT_TRUE(e.bytes_measured);
      EXPECT_FALSE(f.bytes_measured);
    }
  }
}

TEST(Sweep, FastSimCellsMarkBytesAbsentInJson) {
  api::ExperimentSpec spec;
  spec.n_values = {64};
  spec.seeds = 2;
  spec.keep_runs = true;
  spec.backend = api::BackendKind::kFastSim;
  const std::string json = json_of(api::SweepRunner(spec).run());
  EXPECT_NE(json.find("\"bytes\":null"), std::string::npos);
  EXPECT_NE(json.find("\"max_payload_bytes\":null"), std::string::npos);
  EXPECT_EQ(json.find("\"bytes\":0"), std::string::npos);
}

TEST(Sweep, AcceptanceLargeNMultiThreaded) {
  // ISSUE 1 acceptance: a multi-threaded sweep at n=4096 over >= 20 seeds
  // completes with deterministic, backend-validated results. kAuto routes
  // the crash-free tree cells to the fast single-view backend (every run of
  // which is re-validated for validity/uniqueness), so this is fast.
  api::ExperimentSpec spec;
  spec.algorithms = {Algorithm::kBallsIntoLeaves};
  spec.n_values = {4096};
  spec.seeds = 20;
  spec.threads = 8;
  spec.keep_runs = true;
  const api::SweepResult result = api::SweepRunner(spec).run();

  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_EQ(result.total_runs, 20u);
  const api::CellSummary& cell = result.cells.front();
  EXPECT_EQ(cell.backend_used, api::BackendKind::kFastSim);
  EXPECT_EQ(cell.rounds.count, 20u);
  // Theorem 2 head-room: 4096 balls decide in O(log log n) rounds.
  EXPECT_LE(cell.rounds.max, 1 + 2 * 10);

  spec.threads = 1;
  const api::SweepResult serial = api::SweepRunner(spec).run();
  EXPECT_EQ(json_of(result), json_of(serial));
}

TEST(Sweep, AutoPicksEngineForSmallOrAdversarialCells) {
  api::CellConfig cell;
  cell.algorithm = Algorithm::kBallsIntoLeaves;
  cell.n = 64;  // below the auto threshold
  EXPECT_EQ(api::select_backend(cell), api::BackendKind::kEngine);
  cell.n = api::kAutoFastSimMinN;
  EXPECT_EQ(api::select_backend(cell), api::BackendKind::kFastSim);
  // Schedule-only crash adversaries have their own (higher) auto
  // threshold: below it the engine still measures real traffic, above it
  // the crash-capable fast path takes over.
  cell.adversary.kind = AdversaryKind::kEager;
  EXPECT_EQ(api::select_backend(cell), api::BackendKind::kEngine);
  cell.n = api::kAutoFastSimCrashMinN;
  EXPECT_EQ(api::select_backend(cell), api::BackendKind::kFastSim);
  // Protocol-aware targeted adversaries ride the traffic-oracle fast path
  // behind their own threshold.
  cell.adversary.kind = AdversaryKind::kTargetedWinner;
  cell.n = api::kAutoFastSimTargetedMinN - 1;
  EXPECT_EQ(api::select_backend(cell), api::BackendKind::kEngine);
  cell.n = api::kAutoFastSimTargetedMinN;
  EXPECT_EQ(api::select_backend(cell), api::BackendKind::kFastSim);
  cell.adversary.kind = AdversaryKind::kNone;
  cell.algorithm = Algorithm::kGossip;  // not tree-based: engine only
  cell.n = api::kAutoFastSimMinN;
  EXPECT_EQ(api::select_backend(cell), api::BackendKind::kEngine);
}

TEST(Sweep, ExplicitFastSimOnIncompatibleCellThrows) {
  api::ExperimentSpec spec;
  spec.algorithms = {Algorithm::kGossip};
  spec.backend = api::BackendKind::kFastSim;
  EXPECT_THROW((void)api::SweepRunner(spec), ContractViolation);

  // Every registered crash adversary is in the fast domain now — the
  // schedule-only kinds via schedule replay, the targeted kinds via the
  // traffic oracle.
  spec.algorithms = {Algorithm::kBallsIntoLeaves};
  spec.adversaries = {harness::AdversarySpec{
      .kind = AdversaryKind::kTargetedWinner, .crashes = 2, .per_round = 1}};
  EXPECT_NO_THROW((void)api::SweepRunner(spec));

  spec.adversaries = {harness::AdversarySpec{
      .kind = AdversaryKind::kBurst, .crashes = 2, .when = 1}};
  EXPECT_NO_THROW((void)api::SweepRunner(spec));
}

TEST(Sweep, ExplicitFastSimFailsFastWithActionableDiagnostic) {
  // An explicit --backend fast-sim request on an incompatible cell must
  // fail in select_backend with a one-line message naming the incompatible
  // component, not deep inside a run.
  api::CellConfig cell;
  cell.algorithm = Algorithm::kGossip;
  cell.backend = api::BackendKind::kFastSim;
  try {
    (void)api::select_backend(cell);
    FAIL() << "gossip cell must be rejected";
  } catch (const ContractViolation& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("gossip"), std::string::npos) << what;
    EXPECT_NE(what.find("not tree-based"), std::string::npos) << what;
    EXPECT_NE(what.find("engine"), std::string::npos) << what;
  }

  cell.algorithm = Algorithm::kBallsIntoLeaves;
  cell.max_rounds = 8;
  try {
    (void)api::select_backend(cell);
    FAIL() << "round-capped cell must be rejected";
  } catch (const ContractViolation& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("round cap"), std::string::npos) << what;
  }
  cell.max_rounds = 0;
  EXPECT_TRUE(api::fast_sim_incompatibility(cell).empty());
  cell.label_stride = 2;
  EXPECT_NE(api::fast_sim_incompatibility(cell).find("labelling"),
            std::string::npos);
}

TEST(Sweep, SeedModesAssignSeedsAsDocumented) {
  api::ExperimentSpec spec = mixed_grid_spec();
  spec.seed_base = 7;
  EXPECT_EQ(api::cell_run_seed(spec, 0, 0), 7u);
  EXPECT_EQ(api::cell_run_seed(spec, 3, 2), 9u);  // shared across cells

  spec.seed_mode = api::SeedMode::kPerCell;
  EXPECT_NE(api::cell_run_seed(spec, 0, 0), api::cell_run_seed(spec, 1, 0));
  // Still deterministic.
  EXPECT_EQ(api::cell_run_seed(spec, 1, 3), api::cell_run_seed(spec, 1, 3));
}

TEST(Sweep, SummariesOnlyUnlessKeepRuns) {
  api::ExperimentSpec spec;
  spec.n_values = {16};
  spec.seeds = 2;
  const api::SweepResult result = api::SweepRunner(spec).run();
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells.front().runs.empty());
  EXPECT_EQ(result.cells.front().rounds.count, 2u);
}

TEST(Sweep, AdversarialCellsReportCrashes) {
  api::ExperimentSpec spec;
  spec.n_values = {32};
  spec.adversaries = {harness::AdversarySpec{
      .kind = AdversaryKind::kBurst, .crashes = 8, .when = 1}};
  spec.seeds = 3;
  const api::SweepResult result = api::SweepRunner(spec).run();
  EXPECT_GT(result.cells.front().crashes.mean, 0.0);
}

TEST(Sweep, JsonIsWellFormedEnoughToRoundTripKeys) {
  api::ExperimentSpec spec;
  spec.n_values = {16};
  spec.seeds = 2;
  spec.keep_runs = true;
  const std::string json = json_of(api::SweepRunner(spec).run());
  for (const char* key :
       {"\"total_runs\":", "\"cells\":", "\"algorithm\":\"balls-into-leaves\"",
        "\"backend\":\"engine\"", "\"metrics\":", "\"rounds\":", "\"runs\":",
        "\"seed\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace bil
