// Extending the library: writing a custom adversary and running it against
// the protocol with direct engine access (no harness).
//
// The adversary here implements a "grudge" strategy: it watches the wire,
// picks the ball that reached a leaf first, and from then on crashes any
// ball that announces a position adjacent to the grudge target's leaf —
// delivering each final broadcast only to the lower half of the ids, to
// maximize view divergence around the contested region.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "core/balls_into_leaves.h"
#include "core/messages.h"
#include "core/seeds.h"
#include "sim/engine.h"
#include "tree/shape.h"
#include "util/rng.h"

namespace {

using namespace bil;

class GrudgeAdversary final : public sim::Adversary {
 public:
  GrudgeAdversary(std::shared_ptr<const tree::TreeShape> shape,
                  std::uint32_t budget)
      : shape_(std::move(shape)), budget_(budget) {}

  void schedule(const sim::RoundView& view, sim::CrashPlan& plan) override {
    if (view.round() % 2 != 0 || view.round() == 0 || budget_ == 0) {
      return;  // only position rounds are interesting to this strategy
    }
    for (sim::ProcessId id : view.alive()) {
      for (const sim::OutboundMessage& message : view.outgoing(id)) {
        core::Message decoded;
        try {
          decoded = core::decode_message(*message.payload);
        } catch (const wire::WireError&) {
          continue;
        }
        const auto* position = std::get_if<core::PositionMsg>(&decoded);
        if (position == nullptr || !shape_->is_leaf(position->node)) {
          continue;
        }
        const std::uint32_t rank = shape_->leaf_rank(position->node);
        if (grudge_rank_ == kNoGrudge) {
          grudge_rank_ = rank;  // first leaf reached: hold the grudge
          continue;
        }
        const std::uint32_t distance =
            rank > grudge_rank_ ? rank - grudge_rank_ : grudge_rank_ - rank;
        if (distance == 1 && budget_ > 0 &&
            plan.crashes().size() < view.crash_budget_remaining()) {
          // Adjacent to the grudge leaf: crash mid-announcement, delivering
          // only to the lower half of the ids.
          std::vector<sim::ProcessId> lower_half;
          for (sim::ProcessId peer : view.alive()) {
            if (peer < view.num_processes() / 2 && peer != id) {
              lower_half.push_back(peer);
            }
          }
          plan.crash(id, std::move(lower_half));
          --budget_;
        }
      }
    }
  }

 private:
  static constexpr std::uint32_t kNoGrudge = static_cast<std::uint32_t>(-1);
  std::shared_ptr<const tree::TreeShape> shape_;
  std::uint32_t budget_;
  std::uint32_t grudge_rank_ = kNoGrudge;
};

}  // namespace

int main() {
  constexpr std::uint32_t kN = 32;
  constexpr std::uint32_t kBudget = 8;
  constexpr std::uint64_t kSeed = 99;

  auto shape = tree::TreeShape::make(kN);
  std::vector<std::unique_ptr<sim::ProcessBase>> processes;
  for (sim::ProcessId id = 0; id < kN; ++id) {
    processes.push_back(std::make_unique<core::BallsIntoLeavesProcess>(
        core::BallsIntoLeavesProcess::Options{
            .num_names = kN,
            .label = id,
            .seed = derive_seed(kSeed, core::kSeedDomainProcess, id),
            .shape = shape}));
  }
  sim::Engine engine(
      sim::EngineConfig{.num_processes = kN, .max_crashes = kBudget},
      std::move(processes),
      std::make_unique<GrudgeAdversary>(shape, kBudget));

  const sim::RunResult result = engine.run();
  sim::validate_renaming(result, kN);

  std::cout << "custom 'grudge' adversary vs Balls-into-Leaves, n = " << kN
            << "\n"
            << "rounds: " << result.rounds << ", crashes spent: "
            << engine.crash_count() << "\n\nsurvivor names:";
  for (const auto& outcome : result.outcomes) {
    if (!outcome.crashed) {
      std::cout << ' ' << outcome.name;
    }
  }
  std::cout << "\n(all distinct — validated)\n";
  return 0;
}
