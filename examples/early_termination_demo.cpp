// The §6 early-terminating extension, end to end.
//
// Shows the three regimes the paper proves:
//   f = 0          one deterministic phase, 3 rounds total (Theorem 3);
//   small f        a couple of randomized phases confined to tiny subtrees
//                  (Theorem 4: O(log log f));
//   f close to n   behaves like plain Balls-into-Leaves (O(log log n)).
#include <iostream>

#include "harness/runner.h"

namespace {

void run_with_failures(std::uint32_t n, std::uint32_t f) {
  using namespace bil;
  harness::RunConfig config;
  config.algorithm = harness::Algorithm::kEarlyTerminating;
  config.n = n;
  config.seed = 7 + f;
  if (f > 0) {
    // Crash f servers *during the label exchange*, each reaching only a
    // random half of the peers: the worst moment — surviving ranks shift
    // and the deterministic first descent collides in pairs.
    config.adversary =
        harness::AdversarySpec{.kind = harness::AdversaryKind::kBurst,
                               .crashes = f,
                               .when = 0,
                               .subset = sim::SubsetPolicy::kRandomHalf};
  }
  const harness::RunSummary summary = harness::run_renaming(config);
  std::cout << "  f = " << f << ": " << summary.rounds << " rounds ("
            << (summary.rounds - 1) / 2 << " phases)\n";
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 512;
  std::cout << "early-terminating Balls-into-Leaves, n = " << kN << "\n\n";
  std::cout << "Theorem 3 — failure-free runs finish in one deterministic "
               "phase:\n";
  run_with_failures(kN, 0);
  std::cout << "\nTheorem 4 — rounds grow with log log f, not with n:\n";
  for (std::uint32_t f : {1u, 4u, 16u, 64u, 256u}) {
    run_with_failures(kN, f);
  }
  std::cout << "\nCompare: plain Balls-into-Leaves pays its full "
               "O(log log n) phases even with f = 0.\n";
  using namespace bil;
  harness::RunConfig plain;
  plain.algorithm = harness::Algorithm::kBallsIntoLeaves;
  plain.n = kN;
  plain.seed = 7;
  std::cout << "  plain BiL, f = 0: " << harness::run_renaming(plain).rounds
            << " rounds\n";
  return 0;
}
