// Quickstart: rename 16 processes with Balls-into-Leaves in a few lines.
//
//   $ ./quickstart
//
// Demonstrates the one-call harness API (harness::run_renaming) and how to
// read the result: who decided which name, in how many rounds, at what
// message cost.
#include <iostream>

#include "harness/runner.h"

int main() {
  using namespace bil;

  // Configure a run: 16 processes, Balls-into-Leaves, no failures.
  harness::RunConfig config;
  config.algorithm = harness::Algorithm::kBallsIntoLeaves;
  config.n = 16;
  config.seed = 2024;

  // Execute. The harness validates termination, validity and uniqueness
  // before returning (it throws if any renaming property were violated).
  const harness::RunSummary summary = harness::run_renaming(config);

  std::cout << "Balls-into-Leaves, n = " << config.n << "\n"
            << "rounds until everyone decided: " << summary.rounds
            << "  (1 init round + " << (summary.rounds - 1) / 2
            << " two-round phases)\n"
            << "messages delivered: " << summary.messages_delivered
            << ", bytes: " << summary.bytes_delivered << "\n\n";

  std::cout << "process -> name\n";
  for (std::size_t id = 0; id < summary.raw.outcomes.size(); ++id) {
    const auto& outcome = summary.raw.outcomes[id];
    std::cout << "  p" << id << " (label " << id << ") -> " << outcome.name
              << "  (decided in round " << outcome.decide_round << ")\n";
  }

  // The same run, attacked: crash half the processes mid-broadcast while
  // they announce their first candidate paths.
  config.adversary =
      harness::AdversarySpec{.kind = harness::AdversaryKind::kBurst,
                             .crashes = 8,
                             .when = 1,
                             .subset = sim::SubsetPolicy::kRandomHalf};
  const harness::RunSummary attacked = harness::run_renaming(config);
  std::cout << "\nsame run with 8 crashes during round 1: survivors decided "
            << "by round " << attacked.rounds << "\n";
  std::cout << "surviving names:";
  for (const auto& outcome : attacked.raw.outcomes) {
    if (!outcome.crashed) {
      std::cout << ' ' << outcome.name;
    }
  }
  std::cout << "  (all distinct, all in 1.." << config.n << ")\n";
  return 0;
}
