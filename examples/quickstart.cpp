// Quickstart: rename 16 processes with Balls-into-Leaves in a few lines.
//
//   $ ./quickstart
//
// Demonstrates the experiment API (bil::api): describe what you want to run
// as an ExperimentSpec, hand it to a SweepRunner, and read the aggregated
// SweepResult. Every run is validated for the three renaming properties
// (termination, validity, uniqueness) before its numbers are reported.
#include <iostream>

#include "api/sweep.h"

int main() {
  using namespace bil;

  // Describe the experiment: 16 processes, Balls-into-Leaves, no failures,
  // one run. keep_runs retains per-run records (decided names included).
  api::ExperimentSpec spec;
  spec.algorithms = {harness::Algorithm::kBallsIntoLeaves};
  spec.n_values = {16};
  spec.seeds = 1;
  spec.seed_base = 2024;
  spec.keep_runs = true;

  // Execute. One spec can be a whole grid (algorithms × sizes × adversaries
  // × seeds, sharded over a thread pool); here it is a single cell.
  const api::SweepResult result = api::SweepRunner(spec).run();
  const api::CellSummary& cell = result.cells.front();
  const api::RunRecord& run = cell.runs.front();

  std::cout << "Balls-into-Leaves, n = " << cell.config.n << "\n"
            << "rounds until everyone decided: " << run.rounds
            << "  (1 init round + " << (run.rounds - 1) / 2
            << " two-round phases)\n"
            << "messages delivered: " << run.messages_delivered
            << ", bytes: " << run.bytes_delivered << "\n\n";

  std::cout << "process -> name\n";
  for (std::size_t id = 0; id < run.names.size(); ++id) {
    std::cout << "  p" << id << " (label " << id << ") -> " << run.names[id]
              << "\n";
  }

  // The same experiment, attacked: crash half the processes mid-broadcast
  // while they announce their first candidate paths — and this time over 20
  // seeds, because with an adversary the interesting number is statistical.
  spec.adversaries = {
      harness::AdversarySpec{.kind = harness::AdversaryKind::kBurst,
                             .crashes = 8,
                             .when = 1,
                             .subset = sim::SubsetPolicy::kRandomHalf}};
  spec.seeds = 20;
  const api::SweepResult attacked = api::SweepRunner(spec).run();
  const api::CellSummary& attacked_cell = attacked.cells.front();
  std::cout << "\nsame experiment with 8 crashes during round 1, "
            << attacked_cell.rounds.count << " seeds: survivors decided by "
            << "round " << attacked_cell.rounds.mean << " on average (max "
            << attacked_cell.rounds.max << ")\n";
  std::cout << "surviving names of seed " << attacked_cell.runs.front().seed
            << ":";
  for (const std::uint64_t name : attacked_cell.runs.front().names) {
    if (name != 0) {  // 0 marks a crashed process
      std::cout << ' ' << name;
    }
  }
  std::cout << "  (all distinct, all in 1.." << cell.config.n << ")\n";
  return 0;
}
