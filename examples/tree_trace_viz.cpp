// Regenerates the paper's illustrations from live protocol state:
//   Figure 1  — initial configuration: all balls at the root;
//   Figure 2a — "all balls choose the first leaf": the deterministic
//               collision worst case (every ball targets leaf 0);
//   Figure 2b — "choices are well distributed": the real weighted-random
//               phase;
//   Figure 4  — a closer look at one path: balls stuck on the rightmost
//               path and the gateway subtrees that will absorb them.
//
// The renders come from an actual LocalTreeView evolved by the actual
// movement rule (<R priorities, capacity clipping), not from hand-drawn
// state.
#include <iostream>
#include <vector>

#include "core/policy.h"
#include "harness/ascii_tree.h"
#include "tree/local_view.h"
#include "util/rng.h"

namespace {

using namespace bil;

void figure1(tree::LocalTreeView& view) {
  std::cout << "--- Figure 1: initial configuration (all balls at the root) "
               "---\n\n";
  harness::render_tree(std::cout, view);
  std::cout << '\n';
}

void figure2a(const std::shared_ptr<const tree::TreeShape>& shape) {
  std::cout << "--- Figure 2a: all balls choose the first leaf ---\n"
            << "(every ball proposes the path to leaf 0; priorities let one "
               "through per level)\n\n";
  tree::LocalTreeView view(shape);
  view.insert_all_at_root(std::vector<sim::Label>{0, 1, 2, 3, 4, 5, 6, 7});
  for (sim::Label ball : view.ordered_balls()) {
    view.descend_toward(ball, shape->leaf_at(0));
  }
  harness::render_tree(std::cout, view);
  std::cout << '\n';
}

void figure2b(const std::shared_ptr<const tree::TreeShape>& shape) {
  std::cout << "--- Figure 2b: choices are well distributed ---\n"
            << "(capacity-weighted random targets, the real phase 1)\n\n";
  tree::LocalTreeView view(shape);
  view.insert_all_at_root(std::vector<sim::Label>{0, 1, 2, 3, 4, 5, 6, 7});
  // Sample each ball's candidate leaf from the phase-start view, then move
  // in <R order — exactly Algorithm 1's two steps.
  std::vector<tree::NodeId> target(8);
  Rng rng(12);
  for (sim::Label ball = 0; ball < 8; ++ball) {
    Rng ball_rng = rng.fork(ball);
    target[ball] =
        core::sample_weighted_leaf(view, tree::TreeShape::root(), ball_rng);
  }
  for (sim::Label ball : view.ordered_balls()) {
    view.descend_toward(ball, target[ball]);
  }
  harness::render_tree(std::cout, view);
  std::cout << '\n';
}

void figure4(const std::shared_ptr<const tree::TreeShape>& shape) {
  std::cout << "--- Figure 4: a closer look at the rightmost path ---\n"
            << "(5 balls on the path; each gateway subtree hanging off the "
               "path has free\nleaves — their total equals the path "
               "population, Lemma 8)\n\n";
  tree::LocalTreeView view(shape);
  view.insert_all_at_root(std::vector<sim::Label>{0, 1, 2, 3, 4, 5, 6, 7});
  // Park 3 balls at leaves off the path, 5 balls along the rightmost path.
  view.reposition(0, shape->leaf_at(1));
  view.reposition(1, shape->leaf_at(2));
  view.reposition(2, shape->leaf_at(3));
  const tree::NodeId root = tree::TreeShape::root();
  const tree::NodeId right1 = shape->right(root);
  const tree::NodeId right2 = shape->right(right1);
  view.reposition(3, root);
  view.reposition(4, root);
  view.reposition(5, right1);
  view.reposition(6, right2);
  view.reposition(7, right2);
  harness::render_tree(std::cout, view);
  std::cout << "\npath population (root→parent of leaf 7): "
            << view.max_inner_path_load()
            << "; free leaves reachable via gateways: "
            << (view.remaining_capacity(root)) << "\n\n";
  std::cout << "depth histogram of the same configuration:\n";
  harness::render_depth_histogram(std::cout, view);
}

}  // namespace

int main() {
  auto shape = tree::TreeShape::make(8);
  tree::LocalTreeView initial(shape);
  initial.insert_all_at_root(std::vector<sim::Label>{0, 1, 2, 3, 4, 5, 6, 7});
  figure1(initial);
  figure2a(shape);
  figure2b(shape);
  figure4(shape);
  return 0;
}
