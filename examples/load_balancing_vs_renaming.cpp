// Why load balancing does not solve renaming (paper §1–§2).
//
// "Surprisingly, a careful analysis of existing load balancing techniques
// reveals that none of them can be used to achieve sub-logarithmic tight
// renaming, since they either are designed for a fault-free setting, or
// relax the one-to-one allocation requirement."
//
// This example makes the observation quantitative: the classic parallel
// power-of-two-choices allocator, run for the handful of rounds that makes
// it famous, produces a *beautifully balanced* allocation — and an invalid
// renaming, because balance is measured in max load while renaming requires
// max load exactly one. Balls-into-Leaves gets the one-to-one guarantee
// (with crash tolerance!) in a comparable number of rounds.
#include <iostream>

#include "baselines/two_choice.h"
#include "harness/runner.h"

int main() {
  using namespace bil;
  constexpr std::uint32_t kN = 4096;

  std::cout << "n = " << kN << " balls into " << kN << " bins\n\n";

  std::cout << "parallel two-choice load balancing (fault-free, idealized):\n";
  for (std::uint32_t rounds : {1u, 2u, 4u, 8u}) {
    baselines::TwoChoiceOptions options;
    options.balls = kN;
    options.bins = kN;
    options.rounds = rounds;
    options.seed = 7;
    const baselines::TwoChoiceResult result =
        baselines::run_two_choice(options);
    std::cout << "  " << rounds << " round" << (rounds == 1 ? " " : "s")
              << ": max load " << result.max_load << ", bins used "
              << result.bins_used << ", balls sharing a bin "
              << result.colliding_balls
              << (result.is_one_to_one() ? "  -> one-to-one!"
                                         : "  -> NOT a renaming")
              << "\n";
  }

  std::cout << "\nBalls-into-Leaves (crash-tolerant, tight):\n";
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    harness::RunConfig config;
    config.n = kN;
    config.seed = seed;
    // Even with a quarter of the processes crashing mid-protocol:
    config.adversary =
        harness::AdversarySpec{.kind = harness::AdversaryKind::kOblivious,
                               .crashes = kN / 4,
                               .horizon = 8};
    const harness::RunSummary summary = harness::run_renaming(config);
    std::cout << "  seed " << seed << ": " << summary.rounds
              << " rounds, max load 1 by construction, "
              << summary.crashes << " crashes tolerated\n";
  }

  std::cout
      << "\nThe allocator's residual collisions are not a corner case —\n"
         "they are the whole difficulty. Resolving them under crashes is\n"
         "exactly what Balls-into-Leaves' tree capacities, priorities and\n"
         "two-round synchronization are for.\n";
  return 0;
}
