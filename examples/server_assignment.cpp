// The paper's motivating scenario (§1): n failure-prone servers must assign
// themselves one-to-one to n distinct items — here, n worker servers
// claiming n shards of a partitioned job — in as few synchronized
// coordination rounds as possible.
//
// The example contrasts three ways a deployment could solve it:
//   * gossip the full membership for t+1 rounds and take ranks (the
//     "obvious" approach — linear time),
//   * naive randomized claims with retry (log-ish time, no structure),
//   * Balls-into-Leaves (log log time, crash-tolerant, perfectly tight).
// A third of the servers crash mid-protocol in each run.
#include <iostream>

#include "harness/runner.h"

namespace {

struct Candidate {
  const char* description;
  bil::harness::Algorithm algorithm;
};

}  // namespace

int main() {
  using namespace bil;
  constexpr std::uint32_t kServers = 128;
  constexpr std::uint32_t kCrashes = kServers / 3;

  std::cout << kServers << " servers, " << kServers << " shards, up to "
            << kCrashes
            << " servers crash mid-protocol (mid-broadcast, adaptive).\n"
            << "Each coordination round is a full synchronized exchange — "
               "the expensive unit.\n\n";

  const Candidate candidates[] = {
      {"gossip membership, take ranks (t+1 rounds)",
       harness::Algorithm::kGossip},
      {"naive random claims with retry", harness::Algorithm::kNaiveBins},
      {"Balls-into-Leaves", harness::Algorithm::kBallsIntoLeaves},
      {"Balls-into-Leaves + early termination",
       harness::Algorithm::kEarlyTerminating},
  };

  for (const Candidate& candidate : candidates) {
    double rounds_total = 0;
    double worst = 0;
    constexpr std::uint64_t kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      harness::RunConfig config;
      config.algorithm = candidate.algorithm;
      config.n = kServers;
      config.seed = seed;
      config.adversary =
          harness::AdversarySpec{.kind = harness::AdversaryKind::kOblivious,
                                 .crashes = kCrashes,
                                 .horizon = 8,
                                 .subset = sim::SubsetPolicy::kRandomHalf};
      // Gossip must be provisioned for the crash budget it may face.
      config.gossip_t = kCrashes;
      const harness::RunSummary summary = harness::run_renaming(config);
      rounds_total += summary.rounds;
      worst = std::max(worst, static_cast<double>(summary.rounds));
    }
    std::cout << "  " << candidate.description << ":\n    mean "
              << rounds_total / kSeeds << " rounds, worst " << worst
              << " rounds across " << kSeeds << " runs\n";
  }

  std::cout
      << "\nEvery run above ended with each surviving server owning a\n"
         "distinct shard in 1.." << kServers
      << " — the harness validates uniqueness, validity and termination\n"
         "on every execution and throws otherwise.\n";
  return 0;
}
