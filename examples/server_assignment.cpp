// The paper's motivating scenario (§1), long-lived: a fleet of servers must
// each own a distinct shard id from a tight range — but a real fleet is not
// a one-shot cohort. Servers join continuously, hold their shard for a
// while, and leave; the shard a departed server held must be safely handed
// to a later arrival. This is the smallest end-to-end use of the service
// API (src/service/ + api/churn.h): one churn cell, one observer, one
// metrics struct.
//
// What the service layers on top of the one-shot algorithm:
//   * concurrent joiners are batched into one Balls-into-Leaves instance
//     (O(log log k) rounds per batch, not per joiner);
//   * ranks map onto *leased* names from a recycled pool, so the namespace
//     stays tight around the live population instead of growing forever;
//   * the namespace doubles and halves with load (adaptive sizing).
//
// Everything is deterministic in (cell, churn spec, seed) — rerun this
// example and every line is byte-identical.
#include <iostream>

#include "api/churn.h"
#include "api/experiment.h"
#include "service/service.h"

namespace {

/// Prints the first few lease events, then stays quiet: enough to see the
/// join -> leave -> name-recycled lifecycle without drowning the summary.
class EventLogger : public bil::service::ServiceObserver {
 public:
  void on_join(std::uint64_t client, std::uint64_t name,
               std::uint32_t round) override {
    if (round > 0 && joins_logged_ < 5) {
      std::cout << "  round " << round << ": server " << client
                << " assigned shard " << name << "\n";
      ++joins_logged_;
    }
  }
  void on_leave(std::uint64_t client, std::uint64_t name,
                std::uint32_t round) override {
    if (leaves_logged_ < 5) {
      std::cout << "  round " << round << ": server " << client
                << " departed, shard " << name << " recycled\n";
      ++leaves_logged_;
    }
  }
  void on_instance(std::uint32_t round, std::uint32_t batch,
                   std::uint32_t instance_rounds) override {
    if (instances_logged_ < 3) {
      std::cout << "  round " << round << ": renaming instance over " << batch
                << " joiner(s) ran " << instance_rounds << " round(s)\n";
      ++instances_logged_;
    }
  }
  void on_resize(std::uint32_t round, std::uint32_t old_size,
                 std::uint32_t new_size) override {
    std::cout << "  round " << round << ": namespace " << old_size << " -> "
              << new_size << "\n";
  }

 private:
  int joins_logged_ = 0;
  int leaves_logged_ = 0;
  int instances_logged_ = 0;
};

}  // namespace

int main() {
  using namespace bil;

  // The workload: a fleet hovering around 256 live servers. Each round,
  // ~2.56 servers arrive (10 per-mille of the target) and each holds its
  // shard for ~100 rounds, so Little's law keeps arrivals and departures
  // balanced at the target population.
  service::ChurnSpec churn;
  churn.profile = service::ChurnProfile::kPoisson;
  churn.horizon_rounds = 2048;
  churn.arrival_permille = 10;

  // The cell: which algorithm runs each batch, at which target scale, on
  // which backend (kAuto picks the fast simulator; the exact engine gives
  // bit-identical results).
  api::CellConfig cell;
  cell.algorithm = harness::Algorithm::kBallsIntoLeaves;
  cell.n = 256;
  cell.backend = api::BackendKind::kAuto;

  std::cout << "Long-lived shard assignment: target " << cell.n
            << " live servers, " << churn.horizon_rounds
            << " rounds of Poisson churn.\n\nFirst events:\n";

  EventLogger logger;
  const service::ServiceMetrics metrics =
      api::run_churn_cell(cell, churn, /*seed=*/1, /*engine_threads=*/1,
                          &logger);

  std::cout << "\nSteady state over " << metrics.horizon << " rounds:\n"
            << "  arrivals " << metrics.arrivals << ", assigned "
            << metrics.joined << ", departed " << metrics.departed << "\n"
            << "  throughput ratio " << metrics.throughput_ratio
            << " (names/round vs offered arrival rate; 1.0 = keeps up)\n"
            << "  rounds-to-shard p50 " << metrics.latency.median << ", p99 "
            << metrics.latency.p99 << "\n"
            << "  " << metrics.instances << " instances, mean batch "
            << metrics.batch.mean << " joiners\n"
            << "  live-name density " << metrics.density_mean
            << " (live servers / namespace size), namespace ended at "
            << metrics.namespace_final << "\n"
            << "\nNo shard was ever held by two live servers at once — the\n"
               "lease table contract-checks every hand-off, and the property\n"
               "suite (tests/service_test.cpp) audits the full event stream.\n";
  return 0;
}
