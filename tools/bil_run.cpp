// bil_run — command-line front end for the renaming simulator.
//
//   $ bil_run --algorithm=bil --n=256 --seeds=10 --adversary=oblivious
//   $ bil_run --algorithm=bil,halving --n=256,1024,4096 --json
//   $ bil_run --algorithm=halving --n=1024 --csv
//   $ bil_run --n=8 --trace          # watch every round of a tiny run
//   $ bil_run --list-algorithms
//
// A thin shell over bil::api: flags build an ExperimentSpec (comma-separated
// values sweep a grid), SweepRunner executes it across a thread pool, and
// the result prints as an aligned table, CSV, or JSON. Algorithm and
// adversary names come from the api registry — the same tables that back
// --list-algorithms / --list-adversaries.
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/backend.h"
#include "api/registry.h"
#include "api/sweep.h"
#include "sim/trace.h"
#include "stats/table.h"
#include "util/contract.h"
#include "util/flags.h"

namespace {

using namespace bil;

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::istringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  BIL_REQUIRE(!items.empty(), "expected a non-empty comma-separated list");
  return items;
}

template <typename Info>
void list_registry(std::ostream& os, const char* heading,
                   const std::vector<Info>& registry) {
  os << heading << '\n';
  for (const Info& info : registry) {
    os << "  " << info.name;
    for (const std::string& alias : info.aliases) {
      os << " (" << alias << ')';
    }
    os << "\n      " << info.description << '\n';
  }
}

/// Single traced run through the engine backend (--trace).
void traced_run(const api::CellConfig& cell, std::uint64_t seed) {
  sim::TextTrace text_trace;
  const api::EngineBackend backend(&text_trace);
  std::cout << "(trace of seed " << seed << "; --trace forces a single engine "
            << "run)\n\n";
  const api::RunRecord record = backend.run(cell, seed);
  text_trace.dump(std::cout);
  std::cout << "\nrounds: " << record.rounds
            << ", crashes: " << record.crashes
            << ", messages: " << record.messages_delivered
            << ", bytes: " << record.bytes_delivered << '\n';
}

void print_cell_table(const api::SweepResult& result, bool csv) {
  stats::Table table({"algorithm", "n", "adversary", "backend", "mean rounds",
                      "median", "p99", "max", "mean msgs", "mean crashes"});
  for (const api::CellSummary& cell : result.cells) {
    table.add_row({api::algorithm_info(cell.config.algorithm).name,
                   stats::fmt_int(cell.config.n),
                   api::adversary_info(cell.config.adversary.kind).name,
                   to_string(cell.backend_used),
                   stats::fmt_fixed(cell.rounds.mean, 2),
                   stats::fmt_fixed(cell.rounds.median, 1),
                   stats::fmt_fixed(cell.rounds.p99, 1),
                   stats::fmt_fixed(cell.rounds.max, 0),
                   stats::fmt_fixed(cell.messages.mean, 0),
                   stats::fmt_fixed(cell.crashes.mean, 1)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

void print_run_table(const api::CellSummary& cell, bool csv) {
  stats::Table table({"seed", "rounds", "crashes", "messages", "bytes"});
  for (const api::RunRecord& record : cell.runs) {
    table.add_row({stats::fmt_int(record.seed), stats::fmt_int(record.rounds),
                   stats::fmt_int(record.crashes),
                   stats::fmt_int(record.messages_delivered),
                   // Fast-sim runs know their exact message count but never
                   // materialize payloads; bytes are absent, not zero.
                   record.bytes_measured
                       ? stats::fmt_int(record.bytes_delivered)
                       : std::string("-")});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nrounds: mean " << stats::fmt_fixed(cell.rounds.mean, 2)
              << ", median " << stats::fmt_fixed(cell.rounds.median, 1)
              << ", max " << stats::fmt_fixed(cell.rounds.max, 0) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string algorithm = "bil";
  std::string n_list = "64";
  std::uint32_t seeds = 5;
  std::uint64_t seed_base = 1;
  std::string adversary = "none";
  // Numeric knobs that land in uint32 spec fields are parsed through the
  // range-checked add_uint32 path: out-of-range (or negative-looking) input
  // fails with a diagnostic instead of wrapping through a static_cast.
  std::uint32_t crashes = 0;
  std::uint32_t burst_round = 1;
  std::uint32_t horizon = 8;
  std::uint32_t per_round = 2;
  std::string backend = "auto";
  std::uint32_t threads = 0;
  std::uint32_t engine_threads = 0;
  bool eager_decide = false;
  bool csv = false;
  bool json = false;
  bool trace = false;
  bool list_algorithms = false;
  bool list_adversaries = false;

  FlagSet flags("bil_run",
                "run the Balls-into-Leaves renaming simulator (PODC 2014)");
  flags.add_string("algorithm", &algorithm,
                   "comma-separated list of " + api::algorithm_catalog());
  flags.add_string("n", &n_list,
                   "comma-separated list of process counts (= names)");
  flags.add_uint32("seeds", &seeds, "independent runs per grid cell");
  flags.add_uint("seed-base", &seed_base, "first seed");
  flags.add_string("adversary", &adversary, api::adversary_catalog());
  flags.add_uint32("crashes", &crashes, "crash budget t (and planned count)");
  flags.add_uint32("burst-round", &burst_round,
                   "round for --adversary=burst (eager start round)");
  flags.add_uint32("horizon", &horizon,
                   "crash-round horizon for --adversary=oblivious");
  flags.add_uint32("per-round", &per_round,
                   "victims per firing round (sandwich/eager/targeted)");
  flags.add_string("backend", &backend,
                   "auto|engine|fast-sim (auto: fast single-view simulator "
                   "for large tree cells, crash-free or under a "
                   "schedule-only crash adversary)");
  flags.add_uint32("threads", &threads,
                   "sweep thread budget: run workers x engine threads "
                   "(0 = all cores)");
  flags.add_uint32("engine-threads", &engine_threads,
                   "intra-round engine threads per run; results are "
                   "bit-identical for any value (0 = auto: parallel runs "
                   "first, leftover budget to the engine; 1 = serial "
                   "rounds)");
  flags.add_bool("eager-decide", &eager_decide,
                 "decide at leaf arrival instead of at global completion");
  flags.add_bool("csv", &csv, "machine-readable table output");
  flags.add_bool("json", &json, "structured SweepResult JSON output");
  flags.add_bool("trace", &trace, "dump the first run's event trace");
  flags.add_bool("list-algorithms", &list_algorithms,
                 "print the algorithm registry and exit");
  flags.add_bool("list-adversaries", &list_adversaries,
                 "print the adversary registry and exit");

  try {
    if (!flags.parse(argc - 1, argv + 1)) {
      std::cout << flags.usage();
      return 0;
    }
    if (list_algorithms) {
      list_registry(std::cout, "registered algorithms:",
                    api::algorithm_registry());
      return 0;
    }
    if (list_adversaries) {
      list_registry(std::cout, "registered adversaries:",
                    api::adversary_registry());
      return 0;
    }

    api::ExperimentSpec spec;
    spec.algorithms.clear();
    for (const std::string& name : split_csv(algorithm)) {
      spec.algorithms.push_back(api::parse_algorithm(name).algorithm);
    }
    spec.n_values.clear();
    for (const std::string& value : split_csv(n_list)) {
      BIL_REQUIRE(!value.empty() &&
                      value.find_first_not_of("0123456789") == std::string::npos,
                  "--n expects comma-separated integers, got '" + value + "'");
      const std::uint64_t n = std::stoull(value);
      BIL_REQUIRE(n >= 1 && n <= std::numeric_limits<std::uint32_t>::max(),
                  "--n value '" + value + "' is out of range");
      spec.n_values.push_back(static_cast<std::uint32_t>(n));
    }
    spec.adversaries = {api::parse_adversary(adversary).make(
        api::AdversaryKnobs{.crashes = crashes,
                            .when = burst_round,
                            .horizon = horizon,
                            .per_round = per_round})};
    BIL_REQUIRE(seeds >= 1, "--seeds must be at least 1");
    BIL_REQUIRE(horizon >= 1, "--horizon must be at least 1");
    spec.seeds = seeds;
    spec.seed_base = seed_base;
    spec.backend = api::parse_backend(backend);
    spec.threads = threads;
    spec.engine_threads = engine_threads;
    spec.termination = eager_decide ? core::TerminationMode::kEagerLeaf
                                    : core::TerminationMode::kGlobal;
    // Per-seed rows are only printed for single-cell grids; don't retain
    // per-run records (names vectors included) for multi-cell sweeps.
    const bool single_cell =
        spec.algorithms.size() * spec.n_values.size() == 1;
    spec.keep_runs = !json && single_cell;

    const api::SweepRunner runner(spec);
    if (trace) {
      traced_run(runner.cells().front(), seed_base);
      return 0;
    }
    const api::SweepResult result = runner.run();

    if (json) {
      result.write_json(std::cout);
      return 0;
    }
    if (result.cells.size() == 1) {
      const api::CellSummary& cell = result.cells.front();
      if (!csv) {
        std::cout << api::algorithm_info(cell.config.algorithm).name
                  << ", n=" << cell.config.n << ", adversary=" << adversary
                  << " (t=" << crashes << "), backend="
                  << to_string(cell.backend_used) << "\n\n";
      }
      print_run_table(cell, csv);
    } else {
      if (!csv) {
        std::cout << result.total_runs << " runs over "
                  << result.cells.size() << " grid cells, " << seeds
                  << " seeds each\n\n";
      }
      print_cell_table(result, csv);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n\n" << flags.usage();
    return 1;
  }
}
