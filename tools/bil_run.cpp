// bil_run — command-line front end for the renaming simulator.
//
//   $ bil_run --algorithm=bil --n=256 --seeds=10 --adversary=oblivious
//   $ bil_run --algorithm=bil,halving --n=256,1024,4096 --json
//   $ bil_run --algorithm=halving --n=1024 --csv
//   $ bil_run --n=8 --trace          # watch every round of a tiny run
//   $ bil_run --list-algorithms
//
// A thin shell over bil::api: flags build an ExperimentSpec (comma-separated
// values sweep a grid), SweepRunner executes it across a thread pool, and
// the result prints as an aligned table, CSV, or JSON. Algorithm and
// adversary names come from the api registry — the same tables that back
// --list-algorithms / --list-adversaries.
#include <algorithm>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/backend.h"
#include "api/registry.h"
#include "api/sweep.h"
#include "service/churn.h"
#include "service/service.h"
#include "sim/trace.h"
#include "stats/table.h"
#include "util/contract.h"
#include "util/flags.h"

namespace {

using namespace bil;

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::istringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  BIL_REQUIRE(!items.empty(), "expected a non-empty comma-separated list");
  return items;
}

/// --list-algorithms: every registry entry with its construction family
/// (tree / gossip / bins / splitter), so new baselines are discoverable by
/// the class of algorithm they represent.
void list_algorithms_table(std::ostream& os) {
  os << "registered algorithms:\n";
  for (const api::AlgorithmInfo& info : api::algorithm_registry()) {
    os << "  " << info.name;
    for (const std::string& alias : info.aliases) {
      os << " (" << alias << ')';
    }
    os << "  [family: " << info.family << "]\n"
       << "      " << info.description << '\n';
  }
}

/// --list-adversaries: grouped by fault model, with the fast-sim capability
/// spelled out per entry (the byzantine kinds need --backend engine).
void list_adversaries_grouped(std::ostream& os) {
  os << "registered adversaries:\n";
  std::vector<std::string> fault_models;
  for (const api::AdversaryInfo& info : api::adversary_registry()) {
    if (std::find(fault_models.begin(), fault_models.end(),
                  info.fault_model) == fault_models.end()) {
      fault_models.push_back(info.fault_model);
    }
  }
  for (const std::string& model : fault_models) {
    os << "\nfault model: " << model << '\n';
    for (const api::AdversaryInfo& info : api::adversary_registry()) {
      if (info.fault_model != model) {
        continue;
      }
      os << "  " << info.name;
      for (const std::string& alias : info.aliases) {
        os << " (" << alias << ')';
      }
      os << "  [timing: " << info.timing << "; fast-sim: "
         << (info.fast_sim_capable ? "yes" : "no — engine only") << "]\n"
         << "      " << info.description << '\n';
    }
  }
}

/// Single traced run through the engine backend (--trace).
void traced_run(const api::CellConfig& cell, std::uint64_t seed) {
  sim::TextTrace text_trace;
  const api::EngineBackend backend(&text_trace);
  std::cout << "(trace of seed " << seed << "; --trace forces a single engine "
            << "run)\n\n";
  const api::RunRecord record = backend.run(cell, seed);
  text_trace.dump(std::cout);
  std::cout << "\nrounds: " << record.rounds
            << ", crashes: " << record.crashes
            << ", messages: " << record.messages_delivered
            << ", bytes: " << record.bytes_delivered << '\n';
}

void print_cell_table(const api::SweepResult& result, bool csv) {
  stats::Table table({"algorithm", "n", "adversary", "backend", "mean rounds",
                      "median", "p99", "max", "mean msgs", "mean crashes"});
  for (const api::CellSummary& cell : result.cells) {
    table.add_row({api::algorithm_info(cell.config.algorithm).name,
                   stats::fmt_int(cell.config.n),
                   api::adversary_info(cell.config.adversary.kind).name,
                   to_string(cell.backend_used),
                   stats::fmt_fixed(cell.rounds.mean, 2),
                   stats::fmt_fixed(cell.rounds.median, 1),
                   stats::fmt_fixed(cell.rounds.p99, 1),
                   stats::fmt_fixed(cell.rounds.max, 0),
                   stats::fmt_fixed(cell.messages.mean, 0),
                   stats::fmt_fixed(cell.crashes.mean, 1)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

void print_churn_cell_table(const api::SweepResult& result, bool csv) {
  stats::Table table({"algorithm", "n", "profile", "backend", "names/round",
                      "throughput", "lat p50", "lat p99", "density",
                      "namespace"});
  for (const api::CellSummary& cell : result.cells) {
    const api::ChurnCellSummary& churn = cell.churn;
    table.add_row({api::algorithm_info(cell.config.algorithm).name,
                   stats::fmt_int(cell.config.n),
                   service::to_string(churn.spec.profile),
                   to_string(cell.backend_used),
                   stats::fmt_fixed(churn.names_per_round.mean, 1),
                   stats::fmt_fixed(churn.throughput_ratio.mean, 4),
                   stats::fmt_fixed(churn.latency_p50.mean, 1),
                   stats::fmt_fixed(churn.latency_p99.mean, 1),
                   stats::fmt_fixed(churn.density.mean, 3),
                   stats::fmt_fixed(churn.namespace_final.mean, 0)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

void print_churn_run_table(const api::CellSummary& cell, bool csv) {
  stats::Table table({"seed", "arrivals", "joined", "departed", "instances",
                      "names/round", "throughput", "lat p50", "lat p99",
                      "density", "namespace"});
  for (const service::ServiceMetrics& run : cell.churn.runs) {
    table.add_row({stats::fmt_int(run.seed), stats::fmt_int(run.arrivals),
                   stats::fmt_int(run.joined), stats::fmt_int(run.departed),
                   stats::fmt_int(run.instances),
                   stats::fmt_fixed(run.names_per_round, 1),
                   stats::fmt_fixed(run.throughput_ratio, 4),
                   stats::fmt_fixed(run.latency.median, 1),
                   stats::fmt_fixed(run.latency.p99, 1),
                   stats::fmt_fixed(run.density_mean, 3),
                   stats::fmt_int(run.namespace_final)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    const api::ChurnCellSummary& churn = cell.churn;
    std::cout << "\nthroughput ratio: mean "
              << stats::fmt_fixed(churn.throughput_ratio.mean, 4)
              << ", rounds-to-name p99: mean "
              << stats::fmt_fixed(churn.latency_p99.mean, 1)
              << ", live-name density: mean "
              << stats::fmt_fixed(churn.density.mean, 3) << "\n";
  }
}

void print_run_table(const api::CellSummary& cell, bool csv) {
  stats::Table table({"seed", "rounds", "crashes", "messages", "bytes"});
  for (const api::RunRecord& record : cell.runs) {
    table.add_row({stats::fmt_int(record.seed), stats::fmt_int(record.rounds),
                   stats::fmt_int(record.crashes),
                   stats::fmt_int(record.messages_delivered),
                   // Fast-sim runs know their exact message count but never
                   // materialize payloads; bytes are absent, not zero.
                   record.bytes_measured
                       ? stats::fmt_int(record.bytes_delivered)
                       : std::string("-")});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nrounds: mean " << stats::fmt_fixed(cell.rounds.mean, 2)
              << ", median " << stats::fmt_fixed(cell.rounds.median, 1)
              << ", max " << stats::fmt_fixed(cell.rounds.max, 0) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string algorithm = "bil";
  std::string n_list = "64";
  std::uint32_t seeds = 5;
  std::uint64_t seed_base = 1;
  std::string adversary = "none";
  // Numeric knobs that land in uint32 spec fields are parsed through the
  // range-checked add_uint32 path: out-of-range (or negative-looking) input
  // fails with a diagnostic instead of wrapping through a static_cast.
  std::uint32_t crashes = 0;
  std::uint32_t burst_round = 1;
  std::uint32_t horizon = 8;
  std::uint32_t per_round = 2;
  std::uint32_t byzantine = 0;
  std::uint32_t byzantine_rounds = 0;
  std::uint32_t delay = 0;
  std::uint64_t gst = 0;
  std::uint64_t timeout = 0;
  std::string backend = "auto";
  std::string churn;
  std::uint32_t churn_rounds = 4096;
  std::uint32_t churn_arrival_permille = 10;
  std::uint32_t churn_hold_rounds = 0;
  std::uint32_t churn_burst_period = 256;
  std::uint32_t churn_burst_permille = 50;
  std::uint32_t churn_ramp_period = 2048;
  bool churn_warm_start = true;
  std::uint32_t threads = 0;
  std::uint32_t engine_threads = 0;
  bool eager_decide = false;
  bool csv = false;
  bool json = false;
  bool trace = false;
  bool list_algorithms = false;
  bool list_adversaries = false;

  FlagSet flags("bil_run",
                "run the Balls-into-Leaves renaming simulator (PODC 2014)");
  flags.add_string("algorithm", &algorithm,
                   "comma-separated list of " + api::algorithm_catalog());
  flags.add_string("n", &n_list,
                   "comma-separated list of process counts (= names)");
  flags.add_uint32("seeds", &seeds, "independent runs per grid cell");
  flags.add_uint("seed-base", &seed_base, "first seed");
  flags.add_string("adversary", &adversary, api::adversary_catalog());
  flags.add_uint32("crashes", &crashes, "crash budget t (and planned count)");
  flags.add_uint32("burst-round", &burst_round,
                   "round for --adversary=burst (eager start round)");
  flags.add_uint32("horizon", &horizon,
                   "crash-round horizon for --adversary=oblivious");
  flags.add_uint32("per-round", &per_round,
                   "victims per firing round (sandwich/eager/targeted)");
  flags.add_uint32("byzantine", &byzantine,
                   "Byzantine budget f for the byzantine-* adversaries "
                   "(wire-corrupting senders; engine backend only)");
  flags.add_uint32("byzantine-rounds", &byzantine_rounds,
                   "corrupting-round window for the byzantine-* adversaries "
                   "(0 = unbounded; cap the equivocator)");
  flags.add_uint32("delay", &delay,
                   "delay bound d for the asynchronous adversaries: each "
                   "message batch arrives 1..d ticks after the send "
                   "(0 = default 4; d=1 is bit-identical to synchronous; "
                   "implies --adversary=bounded-delay when none is set)");
  flags.add_uint("gst", &gst,
                 "global stabilization tick: delays are adversarial before "
                 "GST, synchronous after (0 = default 8; implies "
                 "--adversary=gst when none is set)");
  flags.add_uint("timeout", &timeout,
                 "on_timeout budget in ticks for the delay adversaries: a "
                 "round whose next delivery is further out fires the "
                 "processes' timeout hook once (0 = off)");
  flags.add_string("backend", &backend,
                   "auto|engine|fast-sim (auto: fast single-view simulator "
                   "for large tree cells, crash-free or under a "
                   "schedule-only crash adversary)");
  flags.add_string("churn", &churn,
                   "long-lived service mode: poisson|bursty|diurnal churn "
                   "profile (each seed runs a full RenamingService horizon "
                   "of overlapping instances with name recycling; requires "
                   "--adversary=none)");
  flags.add_uint32("churn-rounds", &churn_rounds,
                   "service horizon in rounds (--churn)");
  flags.add_uint32("churn-arrival-permille", &churn_arrival_permille,
                   "mean arrivals per round, in permille of n (--churn)");
  flags.add_uint32("churn-hold-rounds", &churn_hold_rounds,
                   "mean lease length in rounds (0 = auto: steady-state "
                   "live population = n)");
  flags.add_uint32("churn-burst-period", &churn_burst_period,
                   "rounds between arrival spikes (--churn=bursty)");
  flags.add_uint32("churn-burst-permille", &churn_burst_permille,
                   "spike size in permille of n (--churn=bursty)");
  flags.add_uint32("churn-ramp-period", &churn_ramp_period,
                   "triangle-wave period in rounds (--churn=diurnal)");
  flags.add_bool("churn-warm-start", &churn_warm_start,
                 "start with a full steady-state population holding names "
                 "(--no-churn-warm-start begins empty)");
  flags.add_uint32("threads", &threads,
                   "sweep thread budget: run workers x engine threads "
                   "(0 = all cores)");
  flags.add_uint32("engine-threads", &engine_threads,
                   "intra-round engine threads per run; results are "
                   "bit-identical for any value (0 = auto: parallel runs "
                   "first, leftover budget to the engine; 1 = serial "
                   "rounds)");
  flags.add_bool("eager-decide", &eager_decide,
                 "decide at leaf arrival instead of at global completion");
  flags.add_bool("csv", &csv, "machine-readable table output");
  flags.add_bool("json", &json, "structured SweepResult JSON output");
  flags.add_bool("trace", &trace, "dump the first run's event trace");
  flags.add_bool("list-algorithms", &list_algorithms,
                 "print the algorithm registry and exit");
  flags.add_bool("list-adversaries", &list_adversaries,
                 "print the adversary registry and exit");

  try {
    if (!flags.parse(argc - 1, argv + 1)) {
      std::cout << flags.usage();
      return 0;
    }
    if (list_algorithms) {
      list_algorithms_table(std::cout);
      return 0;
    }
    if (list_adversaries) {
      list_adversaries_grouped(std::cout);
      return 0;
    }

    api::ExperimentSpec spec;
    spec.algorithms.clear();
    for (const std::string& name : split_csv(algorithm)) {
      spec.algorithms.push_back(api::parse_algorithm(name).algorithm);
    }
    spec.n_values.clear();
    for (const std::string& value : split_csv(n_list)) {
      BIL_REQUIRE(!value.empty() &&
                      value.find_first_not_of("0123456789") == std::string::npos,
                  "--n expects comma-separated integers, got '" + value + "'");
      const std::uint64_t n = std::stoull(value);
      BIL_REQUIRE(n >= 1 && n <= std::numeric_limits<std::uint32_t>::max(),
                  "--n value '" + value + "' is out of range");
      spec.n_values.push_back(static_cast<std::uint32_t>(n));
    }
    // --gst / --delay select their adversary by themselves when the user
    // hasn't picked one: a delay bound means bounded-delay, a stabilization
    // tick means partial synchrony (gst wins when both are given).
    if (adversary == "none") {
      if (gst > 0) {
        adversary = "gst";
      } else if (delay > 0) {
        adversary = "bounded-delay";
      }
    }
    // The delay adversaries' spec factories read only the delay knobs, so a
    // crash or byzantine budget would vanish silently — reject it instead.
    if (harness::is_delay_kind(api::parse_adversary(adversary).kind)) {
      BIL_REQUIRE(crashes == 0 && byzantine == 0,
                  "the delay adversaries schedule message delivery on a "
                  "failure-free run — drop --crashes/--byzantine or pick a "
                  "crash/byzantine adversary");
    }
    spec.adversaries = {api::parse_adversary(adversary).make(
        api::AdversaryKnobs{.crashes = crashes,
                            .when = burst_round,
                            .horizon = horizon,
                            .per_round = per_round,
                            .byzantine = byzantine,
                            .byzantine_rounds = byzantine_rounds,
                            .max_delay = delay == 0 ? 4 : delay,
                            .gst = gst == 0 ? 8 : gst,
                            .timeout = timeout})};
    BIL_REQUIRE(seeds >= 1, "--seeds must be at least 1");
    BIL_REQUIRE(horizon >= 1, "--horizon must be at least 1");
    spec.seeds = seeds;
    spec.seed_base = seed_base;
    spec.backend = api::parse_backend(backend);
    spec.threads = threads;
    spec.engine_threads = engine_threads;
    spec.termination = eager_decide ? core::TerminationMode::kEagerLeaf
                                    : core::TerminationMode::kGlobal;
    if (!churn.empty()) {
      spec.churn.profile = service::parse_churn_profile(churn);
      BIL_REQUIRE(churn_rounds >= 1, "--churn-rounds must be at least 1");
      spec.churn.horizon_rounds = churn_rounds;
      spec.churn.arrival_permille = churn_arrival_permille;
      spec.churn.hold_rounds = churn_hold_rounds;
      spec.churn.burst_period = churn_burst_period;
      spec.churn.burst_permille = churn_burst_permille;
      spec.churn.ramp_period = churn_ramp_period;
      spec.churn.warm_start = churn_warm_start;
      BIL_REQUIRE(!trace, "--trace traces one-shot runs; drop --churn");
    }
    // Per-seed rows are only printed for single-cell grids; don't retain
    // per-run records (names vectors included) for multi-cell sweeps.
    const bool single_cell =
        spec.algorithms.size() * spec.n_values.size() == 1;
    spec.keep_runs = !json && single_cell;

    const api::SweepRunner runner(spec);
    if (trace) {
      BIL_REQUIRE(!harness::is_delay_kind(spec.adversaries.front().kind),
                  "--trace records the lock-step delivery schedule; the "
                  "delay adversaries run the event-queue path, which has no "
                  "trace hook — drop --trace");
      traced_run(runner.cells().front(), seed_base);
      return 0;
    }
    const api::SweepResult result = runner.run();

    if (json) {
      result.write_json(std::cout);
      return 0;
    }
    if (spec.churn.enabled()) {
      if (result.cells.size() == 1) {
        const api::CellSummary& cell = result.cells.front();
        if (!csv) {
          std::cout << api::algorithm_info(cell.config.algorithm).name
                    << ", n=" << cell.config.n << ", churn="
                    << service::to_string(spec.churn.profile) << " over "
                    << spec.churn.horizon_rounds << " rounds, backend="
                    << to_string(cell.backend_used) << "\n\n";
        }
        print_churn_run_table(cell, csv);
      } else {
        if (!csv) {
          std::cout << result.total_runs << " service horizons over "
                    << result.cells.size() << " grid cells, " << seeds
                    << " seeds each\n\n";
        }
        print_churn_cell_table(result, csv);
      }
      return 0;
    }
    if (result.cells.size() == 1) {
      const api::CellSummary& cell = result.cells.front();
      if (!csv) {
        std::cout << api::algorithm_info(cell.config.algorithm).name
                  << ", n=" << cell.config.n << ", adversary=" << adversary
                  << " (t=" << crashes << "), backend="
                  << to_string(cell.backend_used) << "\n\n";
      }
      print_run_table(cell, csv);
    } else {
      if (!csv) {
        std::cout << result.total_runs << " runs over "
                  << result.cells.size() << " grid cells, " << seeds
                  << " seeds each\n\n";
      }
      print_cell_table(result, csv);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n\n" << flags.usage();
    return 1;
  }
}
