// bil_run — command-line front end for the renaming simulator.
//
//   $ bil_run --algorithm=bil --n=256 --seeds=10 --adversary=oblivious
//   $ bil_run --algorithm=halving --n=1024 --csv
//   $ bil_run --n=8 --trace          # watch every round of a tiny run
//
// Prints one row per seed (rounds, crashes, traffic) plus a summary row;
// --csv switches to machine-readable output, --trace dumps the engine's
// event log for the first seed.
#include <iostream>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "sim/trace.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "util/contract.h"
#include "util/flags.h"

namespace {

using namespace bil;

harness::Algorithm parse_algorithm(const std::string& name) {
  if (name == "bil") return harness::Algorithm::kBallsIntoLeaves;
  if (name == "early") return harness::Algorithm::kEarlyTerminating;
  if (name == "rank") return harness::Algorithm::kRankDescent;
  if (name == "halving") return harness::Algorithm::kHalving;
  if (name == "gossip") return harness::Algorithm::kGossip;
  if (name == "bins") return harness::Algorithm::kNaiveBins;
  BIL_REQUIRE(false, "unknown --algorithm '" + name +
                         "' (expected bil|early|rank|halving|gossip|bins)");
  return harness::Algorithm::kBallsIntoLeaves;
}

harness::AdversaryKind parse_adversary(const std::string& name) {
  if (name == "none") return harness::AdversaryKind::kNone;
  if (name == "oblivious") return harness::AdversaryKind::kOblivious;
  if (name == "burst") return harness::AdversaryKind::kBurst;
  if (name == "sandwich") return harness::AdversaryKind::kSandwich;
  if (name == "eager") return harness::AdversaryKind::kEager;
  if (name == "targeted-winner") {
    return harness::AdversaryKind::kTargetedWinner;
  }
  if (name == "targeted-announcer") {
    return harness::AdversaryKind::kTargetedAnnouncer;
  }
  BIL_REQUIRE(false,
              "unknown --adversary '" + name +
                  "' (expected none|oblivious|burst|sandwich|eager|"
                  "targeted-winner|targeted-announcer)");
  return harness::AdversaryKind::kNone;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algorithm = "bil";
  std::uint64_t n = 64;
  std::uint64_t seeds = 5;
  std::uint64_t seed_base = 1;
  std::string adversary = "none";
  std::uint64_t crashes = 0;
  std::uint64_t burst_round = 1;
  bool eager_decide = false;
  bool csv = false;
  bool trace = false;

  FlagSet flags("bil_run",
                "run the Balls-into-Leaves renaming simulator (PODC 2014)");
  flags.add_string("algorithm", &algorithm,
                   "bil|early|rank|halving|gossip|bins");
  flags.add_uint("n", &n, "number of processes (= names)");
  flags.add_uint("seeds", &seeds, "number of independent runs");
  flags.add_uint("seed-base", &seed_base, "first seed");
  flags.add_string("adversary", &adversary,
                   "none|oblivious|burst|sandwich|eager|targeted-winner|"
                   "targeted-announcer");
  flags.add_uint("crashes", &crashes, "crash budget t (and planned count)");
  flags.add_uint("burst-round", &burst_round, "round for --adversary=burst");
  flags.add_bool("eager-decide", &eager_decide,
                 "decide at leaf arrival instead of at global completion");
  flags.add_bool("csv", &csv, "machine-readable output");
  flags.add_bool("trace", &trace, "dump the first run's event trace");

  try {
    if (!flags.parse(argc - 1, argv + 1)) {
      std::cout << flags.usage();
      return 0;
    }

    harness::RunConfig config;
    config.algorithm = parse_algorithm(algorithm);
    config.n = static_cast<std::uint32_t>(n);
    config.termination = eager_decide ? core::TerminationMode::kEagerLeaf
                                      : core::TerminationMode::kGlobal;
    config.adversary = harness::AdversarySpec{
        .kind = parse_adversary(adversary),
        .crashes = static_cast<std::uint32_t>(crashes),
        .when = static_cast<sim::RoundNumber>(burst_round),
        .per_round = 2};

    sim::TextTrace text_trace;
    if (trace) {
      config.trace = &text_trace;
      std::cout << "(trace of seed " << seed_base
                << "; --trace forces a single run)\n\n";
    }

    stats::Table table({"seed", "rounds", "crashes", "messages", "bytes"});
    std::vector<double> all_rounds;
    for (std::uint64_t s = 0; s < (trace ? 1 : seeds); ++s) {
      config.seed = seed_base + s;
      const harness::RunSummary summary = harness::run_renaming(config);
      if (trace) {
        text_trace.dump(std::cout);
        std::cout << '\n';
      }
      table.add_row({stats::fmt_int(config.seed),
                     stats::fmt_int(summary.rounds),
                     stats::fmt_int(summary.crashes),
                     stats::fmt_int(summary.messages_delivered),
                     stats::fmt_int(summary.bytes_delivered)});
      all_rounds.push_back(static_cast<double>(summary.rounds));
    }
    if (csv) {
      table.print_csv(std::cout);
    } else {
      std::cout << to_string(config.algorithm) << ", n=" << n
                << ", adversary=" << adversary << " (t=" << crashes << ")\n\n";
      table.print(std::cout);
      const stats::Summary summary = stats::summarize(all_rounds);
      std::cout << "\nrounds: mean " << stats::fmt_fixed(summary.mean, 2)
                << ", median " << stats::fmt_fixed(summary.median, 1)
                << ", max " << stats::fmt_fixed(summary.max, 0) << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n\n" << flags.usage();
    return 1;
  }
}
