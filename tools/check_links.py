#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Verifies that every relative link and image target in the repo's markdown
files points at a file that exists (external http(s)/mailto links are
skipped; '#anchor' suffixes are stripped). CI runs this so docs can't
silently rot as files move.

Usage: tools/check_links.py [repo_root]     (exit 1 on any broken link)
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files(root: Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("**/*.md"))


def check(root: Path) -> int:
    broken = []
    checked = 0
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            checked += 1
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md.relative_to(root)}:{line}: {target}")
    if broken:
        print(f"{len(broken)} broken link(s):")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"ok: {checked} relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(check(Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()))
