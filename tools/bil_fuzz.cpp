// bil_fuzz — adversary search and schedule replay.
//
//   $ bil_fuzz --search --algorithm=bil --n=256,4096 --crashes=8 \
//              --budget=400 --out=worst.json
//   $ bil_fuzz --replay=worst.json
//
// Search mode hunts worst-case schedules: a seeded optimizer (hill-climb or
// anneal) mutates a crash-schedule genome, each candidate scored through the
// fast simulators (or the exact engine below the auto threshold / for
// engine-only genomes). The best schedule per n prints as a table row, the
// overall worst is written to --out as replayable JSON, and every result is
// checked against the O(log log n) round contract (search/contract.h).
//
// Replay mode re-executes a JSON schedule and verifies the recorded outcome
// bit-for-bit — the determinism story made executable.
//
// Exit codes: 0 success, 1 replay mismatch or usage error, 2 contract
// violation (a found or replayed schedule breaks the round bound) — CI's
// fuzz-search job keys off exit 2 and archives the offending JSON.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "search/contract.h"
#include "search/evaluate.h"
#include "search/genome.h"
#include "search/optimize.h"
#include "stats/table.h"
#include "util/contract.h"
#include "util/flags.h"

namespace {

using namespace bil;

std::vector<std::uint32_t> parse_n_list(const std::string& list) {
  std::vector<std::uint32_t> sizes;
  std::istringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) {
      continue;
    }
    sizes.push_back(static_cast<std::uint32_t>(std::stoull(item)));
  }
  BIL_REQUIRE(!sizes.empty(), "--n expects a comma-separated list of sizes");
  return sizes;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  BIL_REQUIRE(file.good(), "cannot open '" + path + "'");
  std::ostringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

/// Replays a recorded schedule and cross-checks its embedded outcome.
/// Returns the process exit code.
int replay(const std::string& path) {
  const search::GenomeRecord record = search::parse_genome(read_file(path));
  const search::EvalOutcome outcome = search::evaluate(record.genome);
  std::cout << "replayed " << path << ": algorithm="
            << api::algorithm_info(record.genome.algorithm).name
            << " n=" << record.genome.n << " rounds=" << outcome.rounds
            << " crashes=" << outcome.crashes
            << " deliveries=" << outcome.deliveries
            << (outcome.fast_path ? " [fast-sim]" : " [engine]") << '\n';
  bool mismatch = false;
  if (record.rounds != 0 &&
      (outcome.rounds != record.rounds || outcome.crashes != record.crashes ||
       outcome.deliveries != record.deliveries)) {
    std::cerr << "REPLAY MISMATCH: recorded rounds=" << record.rounds
              << " crashes=" << record.crashes
              << " deliveries=" << record.deliveries
              << " but replay observed rounds=" << outcome.rounds
              << " crashes=" << outcome.crashes
              << " deliveries=" << outcome.deliveries << '\n';
    mismatch = true;
  }
  if (!search::round_contract_holds(record.genome.algorithm, record.genome.n,
                                    outcome.rounds)) {
    std::cerr << "CONTRACT VIOLATION: " << outcome.rounds << " rounds > bound "
              << search::loglog_round_bound(record.genome.n) << " at n="
              << record.genome.n << '\n';
    return 2;
  }
  return mismatch ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algorithm_name = "balls-into-leaves";
  std::string n_list = "256";
  std::string objective_name = "rounds";
  std::string optimizer_name = "hill-climb";
  std::string mode_name = "schedule";
  std::string replay_path;
  std::string out_path;
  bool do_search = false;
  std::uint32_t budget = 200;
  std::uint32_t crashes = 4;
  std::uint32_t restarts = 4;
  std::uint32_t byzantine = 0;
  std::uint32_t fast_min_n = 8192;
  std::uint64_t seed = 1;
  std::uint64_t run_seed = 1;

  FlagSet flags("bil_fuzz",
                "Hunt worst-case adversary schedules and replay them.");
  flags.add_bool("search", &do_search,
                 "run the adversary search over the --n grid");
  flags.add_string("replay", &replay_path,
                   "re-execute a schedule JSON and verify its recorded "
                   "outcome bit-for-bit");
  flags.add_string("algorithm", &algorithm_name,
                   "algorithm to attack (name or alias; see bil_run "
                   "--list-algorithms)");
  flags.add_string("n", &n_list, "comma-separated process counts");
  flags.add_uint32("budget", &budget, "candidate evaluations per n");
  flags.add_uint32("crashes", &crashes, "crash budget t per run");
  flags.add_uint32("restarts", &restarts, "hill-climbing restarts");
  flags.add_uint32("byzantine", &byzantine,
                   "Byzantine window budget riding on the schedule "
                   "(engine-only)");
  flags.add_uint("seed", &seed, "search seed (mutation stream)");
  flags.add_uint("run-seed", &run_seed, "run seed candidates execute at");
  flags.add_string("objective", &objective_name,
                   "rounds | name-gap | messages");
  flags.add_string("optimizer", &optimizer_name, "hill-climb | anneal");
  flags.add_string("mode", &mode_name,
                   "schedule | targeted-winner | targeted-announcer");
  flags.add_uint32("fast-min-n", &fast_min_n,
                   "evaluate compatible candidates on the fast simulators at "
                   "or above this n (0 = always; bit-identical either way)");
  flags.add_string("out", &out_path,
                   "write the worst schedule found as replayable JSON");

  try {
    if (!flags.parse(argc - 1, argv + 1)) {
      return 0;
    }
    if (!replay_path.empty()) {
      return replay(replay_path);
    }
    if (!do_search) {
      std::cerr << "nothing to do: pass --search or --replay=<json>\n\n"
                << flags.usage();
      return 1;
    }

    search::SearchConfig config;
    config.algorithm = api::parse_algorithm(algorithm_name).algorithm;
    config.run_seed = run_seed;
    config.budget = crashes;
    config.mode = search::parse_genome_mode(mode_name);
    config.objective = search::parse_objective(objective_name);
    config.evaluations = budget;
    config.restarts = restarts;
    config.search_seed = seed;
    config.byzantine = byzantine;
    config.eval.fast_sim_min_n = fast_min_n;
    const search::OptimizerKind optimizer =
        search::parse_optimizer(optimizer_name);

    stats::Table table({"n", "evals", "best score", "rounds", "bound",
                        "crashes", "deliveries"});
    bool violated = false;
    bool have_worst = false;
    double worst_margin = 0.0;  // rounds / bound — worst is closest to 1.
    search::GenomeRecord worst;
    for (const std::uint32_t n : parse_n_list(n_list)) {
      config.n = n;
      const search::SearchResult result =
          search::run_search(optimizer, config);
      const double bound = search::loglog_round_bound(n);
      table.add_row({stats::fmt_int(n), stats::fmt_int(result.evaluations),
                     stats::fmt_fixed(result.best_score, 0),
                     stats::fmt_int(result.best.rounds),
                     search::has_loglog_contract(config.algorithm)
                         ? stats::fmt_fixed(bound, 1)
                         : "-",
                     stats::fmt_int(result.best.crashes),
                     stats::fmt_int(result.best.deliveries)});
      if (!search::round_contract_holds(config.algorithm, n,
                                        result.best.rounds)) {
        std::cerr << "CONTRACT VIOLATION at n=" << n << ": "
                  << result.best.rounds << " rounds > bound " << bound
                  << "\nschedule:\n"
                  << search::to_json(result.best) << '\n';
        violated = true;
      }
      const double margin =
          static_cast<double>(result.best.rounds) / std::max(bound, 1.0);
      if (!have_worst || margin > worst_margin) {
        have_worst = true;
        worst_margin = margin;
        worst = result.best;
      }
    }
    table.print(std::cout);
    if (!out_path.empty() && have_worst) {
      std::ofstream out(out_path, std::ios::binary);
      BIL_REQUIRE(out.good(), "cannot write '" + out_path + "'");
      out << search::to_json(worst) << '\n';
      std::cout << "worst schedule written to " << out_path << '\n';
    }
    return violated ? 2 : 0;
  } catch (const std::exception& error) {
    std::cerr << "bil_fuzz: " << error.what() << '\n';
    return 1;
  }
}
