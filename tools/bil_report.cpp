// bil_report — regenerate the paper-claims report (docs/results.md).
//
//   $ bil_report --preset all --out docs/results.md   # regenerate the doc
//   $ bil_report --preset rounds-vs-n                 # one preset to stdout
//   $ bil_report --preset ci --json                   # CI verdict JSON
//   $ bil_report --list-presets
//
// Runs the declarative preset grids (src/report/presets.cpp) through the
// unified bil::api sweep layer, fits the scaling models, evaluates every
// claim against its tolerance band, and renders markdown (with ASCII plots,
// plus SVG charts next to --out) or machine-readable JSON. Exit code 0 when
// every claim PASSes, 2 when any FAILs — CI runs `--preset ci --json` and
// treats a non-zero exit or a FAIL verdict in the JSON as claim drift.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/presets.h"
#include "report/report.h"
#include "util/contract.h"
#include "util/flags.h"

namespace {

using namespace bil;

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::istringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  BIL_REQUIRE(!items.empty(), "expected a non-empty comma-separated list");
  return items;
}

/// Directory part of a path ("" when the path has no separator).
std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "all";
  std::string out;
  std::uint64_t threads = 0;
  std::uint64_t engine_threads = 0;
  bool json = false;
  bool quiet = false;
  bool list_presets = false;

  FlagSet flags("bil_report",
                "run the paper-claim presets and render the results report");
  flags.add_string("preset", &preset,
                   "comma-separated list of presets, or 'all' (= every "
                   "preset except the reduced 'ci' grid): " +
                       report::preset_catalog());
  flags.add_string("out", &out,
                   "write markdown here (plus SVG charts in <dir>/plots/) "
                   "instead of stdout");
  flags.add_uint("threads", &threads,
                 "sweep thread budget per grid point (0 = all cores)");
  flags.add_uint("engine-threads", &engine_threads,
                 "intra-round engine threads per run (0 = auto); results "
                 "are bit-identical for any value");
  flags.add_bool("json", &json,
                 "machine-readable claim/verdict JSON on stdout (instead "
                 "of markdown)");
  flags.add_bool("quiet", &quiet, "suppress progress lines on stderr");
  flags.add_bool("list-presets", &list_presets,
                 "print the preset registry and exit");

  try {
    if (!flags.parse(argc - 1, argv + 1)) {
      std::cout << flags.usage();
      return 0;
    }
    if (list_presets) {
      std::cout << "registered presets:\n";
      for (const report::PresetSpec& spec : report::preset_registry()) {
        std::cout << "  " << spec.name << "\n      " << spec.title << " ("
                  << spec.series.size() << " series, " << spec.claims.size()
                  << " claims)\n";
      }
      std::cout << "  all\n      every preset above except 'ci'\n";
      return 0;
    }

    report::RunOptions options;
    options.threads = static_cast<std::uint32_t>(threads);
    options.engine_threads = static_cast<std::uint32_t>(engine_threads);
    options.progress = quiet ? nullptr : &std::cerr;

    const report::Report result =
        report::run_presets(split_csv(preset), options);

    if (json) {
      result.write_json(std::cout);
    } else {
      report::MarkdownOptions markdown;
      markdown.command_line = "bil_report --preset " + preset +
                              (out.empty() ? "" : " --out " + out);
      if (out.empty()) {
        report::write_markdown(result, std::cout, markdown);
      } else {
        const std::string dir = dirname_of(out);
        const std::string svg_dir =
            (dir.empty() ? std::string(".") : dir) + "/plots";
        markdown.svg_links = !report::write_svgs(result, svg_dir).empty();
        std::ofstream file(out);
        BIL_REQUIRE(file.good(), "cannot open --out file " + out);
        report::write_markdown(result, file, markdown);
        if (!quiet) {
          std::cerr << "wrote " << out << " (SVG charts in " << svg_dir
                    << "/)" << std::endl;
        }
      }
    }
    if (!result.all_pass()) {
      std::cerr << "claim FAILures: " << result.claim_count() -
                       result.pass_count()
                << " of " << result.claim_count() << std::endl;
      return 2;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n\n" << flags.usage();
    return 1;
  }
}
